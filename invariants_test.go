package esp

import (
	"math"
	"testing"

	"espsim/internal/core"
	"espsim/internal/workload"
)

// Metamorphic invariants: relations between configurations that must
// hold on every application regardless of the exact cycle counts. They
// catch modelling regressions the golden corpus cannot — a change that
// renumbers everything consistently passes -update but still has to
// keep ESP profitable, idealized structures beneficial, and deeper
// jump-ahead no worse than shallow.
//
// invariantTolerance absorbs second-order modelling noise (queue-view
// boundary effects at truncated session lengths). Empirically the
// relations hold with large margins; 1% keeps the test meaningful
// without flaking on a legitimate one-cycle wobble.
const invariantTolerance = 0.01

// invariantMaxEvents matches the golden corpus truncation: long enough
// for warm-up plus steady state, short enough to sweep every preset.
const invariantMaxEvents = 48

func invariantConfig(c Config) Config {
	c.MaxEvents = invariantMaxEvents
	return c
}

// runInvariantCell runs one cell through the shared harness so every
// subtest of one application reuses the materialized workload.
func runInvariantCell(t *testing.T, h *Harness, prof workload.Profile, c Config) Result {
	t.Helper()
	res, err := h.Run(prof, invariantConfig(c))
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", prof.Name, c.Name, err)
	}
	return res
}

// atLeast asserts got >= want within the invariant tolerance.
func atLeast(t *testing.T, got, want float64, format string, args ...any) {
	t.Helper()
	if got < want*(1-invariantTolerance) {
		args = append(args, got, want)
		t.Errorf(format+": got %.4f, want >= %.4f", args...)
	}
}

// TestInvariantESPOrdering asserts the paper's central result as an
// ordering, per application: adding ESP never hurts the baseline, and
// adding next-line prefetching on top of ESP never hurts ESP
// (Figure 9's bars are ESP+NL >= ESP >= base everywhere).
func TestInvariantESPOrdering(t *testing.T) {
	h := NewHarness()
	for _, prof := range workload.Suite() {
		t.Run(prof.Name, func(t *testing.T) {
			base := runInvariantCell(t, h, prof, BaselineConfig())
			espRes := runInvariantCell(t, h, prof, ESPConfig())
			espNL := runInvariantCell(t, h, prof, ESPNLConfig())

			atLeast(t, espRes.Speedup(base), 1, "%s: ESP vs base", prof.Name)
			atLeast(t, espNL.Speedup(base), espRes.Speedup(base), "%s: ESP+NL vs ESP", prof.Name)
		})
	}
}

// TestInvariantPerfectStructures asserts the Figure 3 potential study's
// premise: idealizing the L1-I, L1-D, or branch predictor on top of the
// NL+S machine can only help, and idealizing all three is at least as
// good as any single idealization.
func TestInvariantPerfectStructures(t *testing.T) {
	h := NewHarness()
	singles := []Config{PerfectL1DConfig(), PerfectBPConfig(), PerfectL1IConfig()}
	for _, prof := range workload.Suite() {
		t.Run(prof.Name, func(t *testing.T) {
			nls := runInvariantCell(t, h, prof, NLSConfig())
			all := runInvariantCell(t, h, prof, PerfectAllConfig())
			for _, cfg := range singles {
				res := runInvariantCell(t, h, prof, cfg)
				atLeast(t, res.Speedup(nls), 1, "%s: %s vs NL+S", prof.Name, cfg.Name)
				atLeast(t, all.Speedup(nls), res.Speedup(nls), "%s: perfectAll vs %s", prof.Name, cfg.Name)
			}
		})
	}
}

// TestInvariantJumpDepth asserts the relation that justifies the
// paper's default jump-ahead depth of two: across the suite, peeking
// two events ahead must not regress the geometric-mean speedup of
// peeking one. Per application the relation is weaker — splitting a
// stall window across two pending events dilutes the per-event
// lookahead, so queue-occupancy-poor applications (facebook, gdocs,
// gmaps) legitimately lose a few percent — but no application may lose
// more than jumpDepthPerAppTolerance (empirically the worst is ~3.6%).
func TestInvariantJumpDepth(t *testing.T) {
	const jumpDepthPerAppTolerance = 0.05

	// Distinct names: the harness memoizes cells by configuration name.
	depthCfg := func(depth int) Config {
		name := "ESP+NL-jd" + string(rune('0'+depth))
		return espVariant(name, func(o *core.Options) { o.JumpDepth = depth }, true)
	}
	h := NewHarness()
	geo1, geo2 := 1.0, 1.0
	for _, prof := range workload.Suite() {
		base := runInvariantCell(t, h, prof, BaselineConfig())
		d1 := runInvariantCell(t, h, prof, depthCfg(1)).Speedup(base)
		d2 := runInvariantCell(t, h, prof, depthCfg(2)).Speedup(base)
		geo1 *= d1
		geo2 *= d2
		if d2 < d1*(1-jumpDepthPerAppTolerance) {
			t.Errorf("%s: jump depth 2 loses %.1f%% over depth 1 (%.4f vs %.4f)",
				prof.Name, 100*(1-d2/d1), d2, d1)
		}
	}
	n := float64(len(workload.Suite()))
	g1, g2 := math.Pow(geo1, 1/n), math.Pow(geo2, 1/n)
	atLeast(t, g2, g1, "suite geomean: jump depth 2 vs 1")
}
