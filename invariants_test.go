package esp

import (
	"math"
	"testing"

	"espsim/internal/core"
	"espsim/internal/eventq"
	"espsim/internal/trace"
	"espsim/internal/workload"
)

// Metamorphic invariants: relations between configurations that must
// hold on every application regardless of the exact cycle counts. They
// catch modelling regressions the golden corpus cannot — a change that
// renumbers everything consistently passes -update but still has to
// keep ESP profitable, idealized structures beneficial, and deeper
// jump-ahead no worse than shallow.
//
// invariantTolerance absorbs second-order modelling noise (queue-view
// boundary effects at truncated session lengths). Empirically the
// relations hold with large margins; 1% keeps the test meaningful
// without flaking on a legitimate one-cycle wobble.
const invariantTolerance = 0.01

// invariantMaxEvents matches the golden corpus truncation: long enough
// for warm-up plus steady state, short enough to sweep every preset.
const invariantMaxEvents = 48

func invariantConfig(c Config) Config {
	c.MaxEvents = invariantMaxEvents
	return c
}

// runInvariantCell runs one cell through the shared harness so every
// subtest of one application reuses the materialized workload.
func runInvariantCell(t *testing.T, h *Harness, prof workload.Profile, c Config) Result {
	t.Helper()
	res, err := h.Run(prof, invariantConfig(c))
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", prof.Name, c.Name, err)
	}
	return res
}

// atLeast asserts got >= want within the invariant tolerance.
func atLeast(t *testing.T, got, want float64, format string, args ...any) {
	t.Helper()
	if got < want*(1-invariantTolerance) {
		args = append(args, got, want)
		t.Errorf(format+": got %.4f, want >= %.4f", args...)
	}
}

// TestInvariantESPOrdering asserts the paper's central result as an
// ordering, per application: adding ESP never hurts the baseline, and
// adding next-line prefetching on top of ESP never hurts ESP
// (Figure 9's bars are ESP+NL >= ESP >= base everywhere).
func TestInvariantESPOrdering(t *testing.T) {
	h := NewHarness()
	for _, prof := range workload.Suite() {
		t.Run(prof.Name, func(t *testing.T) {
			base := runInvariantCell(t, h, prof, BaselineConfig())
			espRes := runInvariantCell(t, h, prof, ESPConfig())
			espNL := runInvariantCell(t, h, prof, ESPNLConfig())

			atLeast(t, espRes.Speedup(base), 1, "%s: ESP vs base", prof.Name)
			atLeast(t, espNL.Speedup(base), espRes.Speedup(base), "%s: ESP+NL vs ESP", prof.Name)
		})
	}
}

// TestInvariantPerfectStructures asserts the Figure 3 potential study's
// premise: idealizing the L1-I, L1-D, or branch predictor on top of the
// NL+S machine can only help, and idealizing all three is at least as
// good as any single idealization.
func TestInvariantPerfectStructures(t *testing.T) {
	h := NewHarness()
	singles := []Config{PerfectL1DConfig(), PerfectBPConfig(), PerfectL1IConfig()}
	for _, prof := range workload.Suite() {
		t.Run(prof.Name, func(t *testing.T) {
			nls := runInvariantCell(t, h, prof, NLSConfig())
			all := runInvariantCell(t, h, prof, PerfectAllConfig())
			for _, cfg := range singles {
				res := runInvariantCell(t, h, prof, cfg)
				atLeast(t, res.Speedup(nls), 1, "%s: %s vs NL+S", prof.Name, cfg.Name)
				atLeast(t, all.Speedup(nls), res.Speedup(nls), "%s: perfectAll vs %s", prof.Name, cfg.Name)
			}
		})
	}
}

// TestInvariantJumpDepth asserts the relation that justifies the
// paper's default jump-ahead depth of two: across the suite, peeking
// two events ahead must not regress the geometric-mean speedup of
// peeking one. Per application the relation is weaker — splitting a
// stall window across two pending events dilutes the per-event
// lookahead, so queue-occupancy-poor applications (facebook, gdocs,
// gmaps) legitimately lose a few percent — but no application may lose
// more than jumpDepthPerAppTolerance (empirically the worst is ~3.6%).
func TestInvariantJumpDepth(t *testing.T) {
	const jumpDepthPerAppTolerance = 0.05

	// Distinct names: the harness memoizes cells by configuration name.
	depthCfg := func(depth int) Config {
		name := "ESP+NL-jd" + string(rune('0'+depth))
		return espVariant(name, func(o *core.Options) { o.JumpDepth = depth }, true)
	}
	h := NewHarness()
	geo1, geo2 := 1.0, 1.0
	for _, prof := range workload.Suite() {
		base := runInvariantCell(t, h, prof, BaselineConfig())
		d1 := runInvariantCell(t, h, prof, depthCfg(1)).Speedup(base)
		d2 := runInvariantCell(t, h, prof, depthCfg(2)).Speedup(base)
		geo1 *= d1
		geo2 *= d2
		if d2 < d1*(1-jumpDepthPerAppTolerance) {
			t.Errorf("%s: jump depth 2 loses %.1f%% over depth 1 (%.4f vs %.4f)",
				prof.Name, 100*(1-d2/d1), d2, d1)
		}
	}
	n := float64(len(workload.Suite()))
	g1, g2 := math.Pow(geo1, 1/n), math.Pow(geo2, 1/n)
	atLeast(t, g2, g1, "suite geomean: jump depth 2 vs 1")
}

// Scheduler laws: metamorphic relations over the scheduling dimension.
// Schedules are pure functions of event metadata, so these laws are
// checked on the full mobile sessions (no simulation needed) — the
// truncation that keeps the simulated invariants cheap would leave the
// deadline laws vacuous (nothing misses in the first 48 events).

// sessionSchedule materializes prof's full session and schedules it
// under policy.
func sessionSchedule(t *testing.T, prof workload.Profile, policy eventq.SchedPolicy) *eventq.Schedule {
	t.Helper()
	s, err := workload.NewSession(prof)
	if err != nil {
		t.Fatalf("session %s: %v", prof.Name, err)
	}
	sch, err := eventq.BuildSchedule(s.Events, policy)
	if err != nil {
		t.Fatalf("schedule %s/%v: %v", prof.Name, policy, err)
	}
	return sch
}

// classP95 returns the named class's p95 latency under st, or NaN when
// the class never ran.
func classP95(st eventq.SchedStats, class string) float64 {
	for _, cl := range st.Classes {
		if cl.Class == class {
			return cl.P95
		}
	}
	return math.NaN()
}

// TestInvariantSchedulerDeadlines asserts the deadline laws on both
// mobile profiles: the deadline-aware policies (EDF, slack) never miss
// more deadlines than FIFO dispatch, and strict priority never
// increases the most-urgent class's tail latency over FIFO. These are
// not theorems for non-preemptive dispatch in general, but they are
// exactly what the mobile-web deadline distributions were shaped to
// exhibit — a scheduler change that breaks one has changed dispatch
// semantics, not wobbled a cycle count.
func TestInvariantSchedulerDeadlines(t *testing.T) {
	for _, prof := range workload.MobileSuite() {
		t.Run(prof.Name, func(t *testing.T) {
			fifo := sessionSchedule(t, prof, eventq.SchedFIFO).Stats
			prio := sessionSchedule(t, prof, eventq.SchedPriority).Stats
			edf := sessionSchedule(t, prof, eventq.SchedEDF).Stats
			slack := sessionSchedule(t, prof, eventq.SchedSlack).Stats

			if fifo.Deadlined == 0 {
				t.Fatalf("%s: no deadlined events — the deadline laws are vacuous", prof.Name)
			}
			for _, aware := range []eventq.SchedStats{edf, slack} {
				if aware.DeadlineMisses > fifo.DeadlineMisses {
					t.Errorf("%s: %s misses %d deadlines, FIFO only %d",
						prof.Name, aware.Policy, aware.DeadlineMisses, fifo.DeadlineMisses)
				}
			}
			if prio.PriorityInversions != 0 {
				t.Errorf("%s: strict priority reports %d inversions", prof.Name, prio.PriorityInversions)
			}
			urgent := trace.ClassInput.String()
			pf, pp := classP95(fifo, urgent), classP95(prio, urgent)
			if math.IsNaN(pf) || math.IsNaN(pp) {
				t.Fatalf("%s: input class absent from stats", prof.Name)
			}
			if pp > pf*(1+invariantTolerance) {
				t.Errorf("%s: strict priority raises input p95 latency: %.0f vs FIFO %.0f",
					prof.Name, pp, pf)
			}
		})
	}
}

// TestInvariantSlackMonotone asserts the metamorphic slack law: giving
// every deadline more room (a constant DeadlineSlack added at session
// build time) never increases the miss count, under any policy. A
// constant shift preserves each policy's dispatch order, so misses can
// only be forgiven, never created.
func TestInvariantSlackMonotone(t *testing.T) {
	const extraSlack = 20000
	for _, prof := range workload.MobileSuite() {
		relaxed := prof
		relaxed.DeadlineSlack += extraSlack
		for p := eventq.SchedPolicy(0); p.Valid(); p++ {
			tight := sessionSchedule(t, prof, p).Stats
			loose := sessionSchedule(t, relaxed, p).Stats
			if loose.DeadlineMisses > tight.DeadlineMisses {
				t.Errorf("%s/%v: adding %d slack raised misses %d -> %d",
					prof.Name, p, extraSlack, tight.DeadlineMisses, loose.DeadlineMisses)
			}
		}
	}
}

// TestInvariantESPOrderingScheduled asserts that the paper's central
// ordering survives the scheduling dimension: under every dispatch
// policy, on both mobile profiles, ESP never hurts the baseline and
// ESP+NL never hurts ESP. Scheduling reorders the queue the looper
// drains; it must not change what sneak-peek is worth relative to the
// machine it runs on.
func TestInvariantESPOrderingScheduled(t *testing.T) {
	h := NewHarness()
	for _, prof := range workload.MobileSuite() {
		for p := SchedPolicy(0); p.Valid(); p++ {
			base := runInvariantCell(t, h, prof, SchedConfig(BaselineConfig(), p))
			espRes := runInvariantCell(t, h, prof, SchedConfig(ESPConfig(), p))
			espNL := runInvariantCell(t, h, prof, SchedConfig(ESPNLConfig(), p))

			atLeast(t, espRes.Speedup(base), 1, "%s@%v: ESP vs base", prof.Name, p)
			atLeast(t, espNL.Speedup(base), espRes.Speedup(base), "%s@%v: ESP+NL vs ESP", prof.Name, p)

			if base.Sched == nil {
				t.Fatalf("%s@%v: scheduled cell returned no responsiveness stats", prof.Name, p)
			}
			if base.Sched.Policy != p.String() {
				t.Errorf("%s@%v: stats report policy %q", prof.Name, p, base.Sched.Policy)
			}
		}
	}
}
