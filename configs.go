package esp

import (
	"fmt"
	"sort"
	"strings"

	"espsim/internal/core"
	"espsim/internal/eventq"
	"espsim/internal/runahead"
)

// The named configurations below are the machine design points that
// appear across the paper's figures. Names double as memoization keys in
// the experiment Harness, so each distinct design point has a distinct
// name.

// BaselineConfig is the Figure 7 core with no prefetching: the
// normalization baseline of Figure 9.
func BaselineConfig() Config {
	return Config{Name: "base"}
}

// NLConfig adds the next-line instruction and next-line (DCU) data
// prefetchers to the baseline ("NL" in Figure 9).
func NLConfig() Config {
	return Config{Name: "NL", NLI: true, NLD: true}
}

// NLSConfig adds the stride data prefetcher to NL ("NL + S"): the
// paper's primary baseline (Figure 7).
func NLSConfig() Config {
	return Config{Name: "NL+S", NLI: true, NLD: true, StridePF: true}
}

// NLIOnlyConfig enables only the next-line instruction prefetcher
// ("NL-I" in Figure 11a).
func NLIOnlyConfig() Config {
	return Config{Name: "NL-I", NLI: true}
}

// NLDOnlyConfig enables only the next-line data prefetcher ("NL-D" in
// Figure 11b).
func NLDOnlyConfig() Config {
	return Config{Name: "NL-D", NLD: true}
}

// EFetchConfig is the §7 comparison point: the event-signature
// instruction prefetcher of Chadha et al. (PACT 2014), standalone.
func EFetchConfig() Config {
	return Config{Name: "EFetch", EFetch: true}
}

// PIFConfig is the §7 comparison point: Proactive Instruction Fetch
// (Ferdman et al., MICRO 2011), standalone.
func PIFConfig() Config {
	return Config{Name: "PIF", PIF: true}
}

// RunaheadConfig is runahead execution with no prefetchers ("Runahead").
func RunaheadConfig() Config {
	return Config{Name: "Runahead", Assist: AssistRunahead, RA: runahead.DefaultConfig()}
}

// RunaheadNLConfig combines runahead with next-line prefetching
// ("Runahead + NL").
func RunaheadNLConfig() Config {
	c := RunaheadConfig()
	c.Name, c.NLI, c.NLD = "Runahead+NL", true, true
	return c
}

// RunaheadDConfig is the data-cache-only runahead of Figure 11b
// ("Runahead-D").
func RunaheadDConfig() Config {
	return Config{Name: "Runahead-D", Assist: AssistRunahead, RA: runahead.DataOnlyConfig()}
}

// RunaheadDNLDConfig is Runahead-D plus the next-line data prefetcher.
func RunaheadDNLDConfig() Config {
	c := RunaheadDConfig()
	c.Name, c.NLD = "Runahead-D+NL-D", true
	return c
}

// ESPConfig is the full Event Sneak Peek design with no baseline
// prefetchers ("ESP" in Figure 9).
func ESPConfig() Config {
	return Config{Name: "ESP", Assist: AssistESP, ESP: core.DefaultOptions()}
}

// ESPNLConfig is the paper's headline configuration: ESP combined with
// next-line prefetching ("ESP + NL", +32% over no prefetching, +16% over
// NL + S).
func ESPNLConfig() Config {
	c := ESPConfig()
	c.Name, c.NLI, c.NLD = "ESP+NL", true, true
	return c
}

// espVariant builds an ESP+NL configuration with modified options.
func espVariant(name string, mod func(*core.Options), nl bool) Config {
	opt := core.DefaultOptions()
	mod(&opt)
	c := Config{Name: name, Assist: AssistESP, ESP: opt}
	if nl {
		c.NLI, c.NLD = true, true
	}
	return c
}

// NaiveESPConfig is the hypothetical Figure 10 design with no cachelets
// or lists: pre-execution fetches into L1/L2 and trains the live
// predictor directly.
func NaiveESPConfig() Config {
	return espVariant("NaiveESP", func(o *core.Options) {
		o.Naive = true
		o.UseI, o.UseD, o.UseB = false, false, false
		o.BPMode = core.BPShared
	}, false)
}

// NaiveESPNLConfig is naive ESP plus next-line prefetching.
func NaiveESPNLConfig() Config {
	c := NaiveESPConfig()
	c.Name, c.NLI, c.NLD = "NaiveESP+NL", true, true
	return c
}

// ESPIOnlyNLConfig enables only the I-list benefit ("ESP-I + NL",
// Figure 10).
func ESPIOnlyNLConfig() Config {
	return espVariant("ESP-I+NL", func(o *core.Options) {
		o.UseD, o.UseB = false, false
	}, true)
}

// ESPIBNLConfig enables the I-list and B-list benefits ("ESP-I,B + NL").
func ESPIBNLConfig() Config {
	return espVariant("ESP-I,B+NL", func(o *core.Options) {
		o.UseD = false
	}, true)
}

// ESPIBDNLConfig is the full design ("ESP-I,B,D + NL") — identical to
// ESPNLConfig but named for the Figure 10 series.
func ESPIBDNLConfig() Config {
	c := ESPNLConfig()
	c.Name = "ESP-I,B,D+NL"
	return c
}

// ESPIOnlyConfig isolates instruction prefetching with no NL ("ESP-I",
// Figure 11a).
func ESPIOnlyConfig() Config {
	return espVariant("ESP-I", func(o *core.Options) {
		o.UseD, o.UseB = false, false
	}, false)
}

// ESPIOnlyNLIConfig is ESP-I plus only the next-line instruction
// prefetcher ("ESP-I + NL-I").
func ESPIOnlyNLIConfig() Config {
	c := espVariant("ESP-I+NL-I", func(o *core.Options) {
		o.UseD, o.UseB = false, false
	}, false)
	c.NLI = true
	return c
}

// IdealESPINLIConfig removes capacity and timeliness limits from ESP-I
// ("ideal ESP-I + NL-I").
func IdealESPINLIConfig() Config {
	c := espVariant("idealESP-I+NL-I", func(o *core.Options) {
		o.UseD, o.UseB = false, false
		o.Ideal = true
	}, false)
	c.NLI = true
	return c
}

// ESPDOnlyConfig isolates data prefetching ("ESP-D", Figure 11b).
func ESPDOnlyConfig() Config {
	return espVariant("ESP-D", func(o *core.Options) {
		o.UseI, o.UseB = false, false
	}, false)
}

// ESPDOnlyNLDConfig is ESP-D plus the next-line data prefetcher.
func ESPDOnlyNLDConfig() Config {
	c := espVariant("ESP-D+NL-D", func(o *core.Options) {
		o.UseI, o.UseB = false, false
	}, false)
	c.NLD = true
	return c
}

// IdealESPDNLDConfig removes capacity limits from ESP-D ("ideal ESP-D +
// NL-D").
func IdealESPDNLDConfig() Config {
	c := espVariant("idealESP-D+NL-D", func(o *core.Options) {
		o.UseI, o.UseB = false, false
		o.Ideal = true
	}, false)
	c.NLD = true
	return c
}

// Figure 12 branch-predictor design points, all on the full ESP cache
// machinery with next-line prefetching.

// ESPBPNoExtraHWConfig shares PIR and tables between modes and has no
// B-list ("no extra H/W").
func ESPBPNoExtraHWConfig() Config {
	return espVariant("BP-noextra", func(o *core.Options) {
		o.BPMode = core.BPShared
		o.UseB = false
	}, true)
}

// ESPBPSeparateContextConfig replicates only the PIR ("separate
// context").
func ESPBPSeparateContextConfig() Config {
	return espVariant("BP-sepctx", func(o *core.Options) {
		o.BPMode = core.BPSeparatePIR
		o.UseB = false
	}, true)
}

// ESPBPReplicatedConfig replicates the whole predictor per mode
// ("separate context and tables").
func ESPBPReplicatedConfig() Config {
	return espVariant("BP-septables", func(o *core.Options) {
		o.BPMode = core.BPReplicate
		o.UseB = false
	}, true)
}

// ESPBPFullConfig is the shipped design: separate PIR plus B-list
// just-in-time training ("separate context + B-list (ESP)").
func ESPBPFullConfig() Config {
	c := ESPNLConfig()
	c.Name = "BP-esp"
	return c
}

// Perfect-structure configurations for the Figure 3 potential study, all
// relative to the paper's NL+S baseline machine.

// PerfectL1DConfig idealizes the L1 data cache.
func PerfectL1DConfig() Config {
	c := NLSConfig()
	c.Name, c.PerfectL1D = "perfectL1D", true
	return c
}

// PerfectBPConfig idealizes the branch predictor.
func PerfectBPConfig() Config {
	c := NLSConfig()
	c.Name, c.PerfectBP = "perfectBP", true
	return c
}

// PerfectL1IConfig idealizes the L1 instruction cache.
func PerfectL1IConfig() Config {
	c := NLSConfig()
	c.Name, c.PerfectL1I = "perfectL1I", true
	return c
}

// PerfectAllConfig idealizes all three.
func PerfectAllConfig() Config {
	c := NLSConfig()
	c.Name = "perfectAll"
	c.PerfectL1I, c.PerfectL1D, c.PerfectBP = true, true, true
	return c
}

// WorkingSetStudyConfig is the Figure 13 instrumented run: jump-ahead
// depth 8, deep queue visibility, reuse profiling attached.
func WorkingSetStudyConfig() Config {
	c := espVariant("wset-study", func(o *core.Options) {
		o.JumpDepth = 8
		o.MeasureWorkingSets = true
	}, true)
	c.MaxPending = 8
	return c
}

// IdleCoreConfig is the §7 alternative: ESP's machinery driven by a
// dedicated helper core instead of the main core's stall windows. It
// needs no cachelets or pipeline drains — but it costs an entire core
// and pays live-in/list transfer latencies per event.
func IdleCoreConfig() Config {
	return Config{Name: "IdleCore", Assist: AssistESP, ESP: core.IdleCoreOptions()}
}

// IdleCoreNLConfig combines the idle-core design with next-line
// prefetching, for comparison with ESPNLConfig.
func IdleCoreNLConfig() Config {
	c := IdleCoreConfig()
	c.Name, c.NLI, c.NLD = "IdleCore+NL", true, true
	return c
}

// NamedConfigs returns every named preset configuration, in figure
// order. Names are unique; ConfigByName resolves them, which is how the
// espd service maps request strings onto machine design points.
func NamedConfigs() []Config {
	return []Config{
		BaselineConfig(), NLConfig(), NLSConfig(), NLIOnlyConfig(), NLDOnlyConfig(),
		EFetchConfig(), PIFConfig(),
		RunaheadConfig(), RunaheadNLConfig(), RunaheadDConfig(), RunaheadDNLDConfig(),
		ESPConfig(), ESPNLConfig(),
		NaiveESPConfig(), NaiveESPNLConfig(),
		ESPIOnlyNLConfig(), ESPIBNLConfig(), ESPIBDNLConfig(),
		ESPIOnlyConfig(), ESPIOnlyNLIConfig(), IdealESPINLIConfig(),
		ESPDOnlyConfig(), ESPDOnlyNLDConfig(), IdealESPDNLDConfig(),
		ESPBPNoExtraHWConfig(), ESPBPSeparateContextConfig(), ESPBPReplicatedConfig(), ESPBPFullConfig(),
		PerfectL1DConfig(), PerfectBPConfig(), PerfectL1IConfig(), PerfectAllConfig(),
		WorkingSetStudyConfig(),
		IdleCoreConfig(), IdleCoreNLConfig(),
	}
}

// ConfigNames returns the preset names, sorted, for error messages and
// service discovery.
func ConfigNames() []string {
	cfgs := NamedConfigs()
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// SchedConfig returns cfg scheduled under policy. Non-FIFO policies get
// "@policy" appended to the name, so memoization keys, result labels,
// and golden-corpus keys stay distinct per schedule.
func SchedConfig(cfg Config, policy SchedPolicy) Config {
	cfg.Sched = policy
	if policy != SchedFIFO {
		cfg.Name += "@" + policy.String()
	}
	return cfg
}

// ConfigByName returns the preset configuration with the given name, or
// an error listing the valid names. A "@policy" suffix schedules the
// preset under that dispatch policy ("ESP+NL@edf"); see SchedConfig.
func ConfigByName(name string) (Config, error) {
	baseName, policy := name, SchedFIFO
	if i := strings.LastIndex(name, "@"); i >= 0 {
		p, err := eventq.SchedByName(name[i+1:])
		if err != nil {
			return Config{}, fmt.Errorf("esp: config %q: %w", name, err)
		}
		baseName, policy = name[:i], p
	}
	for _, c := range NamedConfigs() {
		if c.Name == baseName {
			return SchedConfig(c, policy), nil
		}
	}
	return Config{}, fmt.Errorf("esp: unknown config %q (valid: %v)", name, ConfigNames())
}
