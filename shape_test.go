package esp

// Shape tests: lock in the paper's qualitative results (who wins, in
// what order) at reduced scale, so regressions in any component surface
// as broken orderings rather than silent drift. EXPERIMENTS.md records
// the full-scale numbers.

import (
	"fmt"
	"math"
	"testing"

	"espsim/internal/stats"
)

// shapeHarness runs the suite at reduced scale; memoization makes the
// whole file cost roughly one full sweep.
var shared *Harness

func shapeHarness() *Harness {
	if shared == nil {
		shared = NewHarness()
		shared.Scale = 0.5
	}
	return shared
}

// mustFig adapts a (Figure, error) figure generator for tests: the
// curried form lets the two-value call expand into the argument list.
func mustFig(t *testing.T) func(Figure, error) Figure {
	return func(f Figure, err error) Figure {
		if err != nil {
			t.Helper()
			t.Fatalf("figure generation: %v", err)
		}
		return f
	}
}

func TestShapeFig9Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig9())
	get := func(name string) float64 {
		v, ok := f.Summary[name]
		if !ok || math.IsNaN(v) {
			t.Fatalf("missing series %q", name)
		}
		return v
	}
	espNL, raNL, nls, nl, ra, espOnly :=
		get("ESP+NL"), get("Runahead+NL"), get("NL+S"), get("NL"), get("Runahead"), get("ESP")
	// The paper's Figure 9 ordering.
	if !(espNL > raNL) {
		t.Errorf("ESP+NL (%.1f) must beat Runahead+NL (%.1f)", espNL, raNL)
	}
	if !(raNL > nls) {
		t.Errorf("Runahead+NL (%.1f) must beat NL+S (%.1f)", raNL, nls)
	}
	if !(nls >= nl) {
		t.Errorf("NL+S (%.1f) must be at least NL (%.1f)", nls, nl)
	}
	if !(nl > ra) {
		t.Errorf("NL (%.1f) must beat bare runahead (%.1f)", nl, ra)
	}
	if ra <= 0 || espOnly <= 0 {
		t.Errorf("both assists must improve on the bare baseline: RA %.1f, ESP %.1f", ra, espOnly)
	}
	// Stride adds almost nothing over NL (paper: 0.1%).
	if nls-nl > 3 {
		t.Errorf("stride adds %.1f points over NL; paper says ~0.1", nls-nl)
	}
	// ESP+NL's margin over NL+S is the headline: it must be substantial.
	if espNL-nls < 4 {
		t.Errorf("ESP+NL margin over NL+S is only %.1f points", espNL-nls)
	}
}

func TestShapeFig10Sources(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig10())
	i := f.Summary["ESP-I+NL"]
	ib := f.Summary["ESP-I,B+NL"]
	ibd := f.Summary["ESP-I,B,D+NL"]
	if !(i < ib && ib < ibd) {
		t.Errorf("each optimization must add benefit: I=%.1f I,B=%.1f I,B,D=%.1f", i, ib, ibd)
	}
	if f.Summary["NaiveESP+NL"] >= ibd {
		t.Errorf("naive ESP (%.1f) must not beat the full design (%.1f)",
			f.Summary["NaiveESP+NL"], ibd)
	}
}

func TestShapeFig11aICache(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig11a())
	base, nli := f.Summary["base"], f.Summary["NL-I"]
	espI, espNL, ideal := f.Summary["ESP-I"], f.Summary["ESP-I+NL-I"], f.Summary["idealESP-I+NL-I"]
	if !(base > nli) {
		t.Errorf("NL-I must cut MPKI: %.1f vs %.1f", nli, base)
	}
	if !(nli > espNL) {
		t.Errorf("ESP-I+NL-I (%.1f) must beat NL-I alone (%.1f)", espNL, nli)
	}
	if !(espI < base) {
		t.Errorf("ESP-I alone (%.1f) must beat base (%.1f)", espI, base)
	}
	if !(ideal <= espNL) {
		t.Errorf("ideal (%.1f) must lower-bound real ESP (%.1f)", ideal, espNL)
	}
}

func TestShapeFig11bDCache(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig11b())
	base := f.Summary["base"]
	raD := f.Summary["Runahead-D"]
	espD := f.Summary["ESP-D"]
	ideal := f.Summary["idealESP-D+NL-D"]
	if !(raD < base && espD < base) {
		t.Errorf("both techniques must cut the D miss rate: base %.2f, RA-D %.2f, ESP-D %.2f",
			base, raD, espD)
	}
	// Paper: runahead is at least as good as capacity-limited ESP on the
	// data side, and ideal ESP closes the gap.
	if raD > espD*1.15 {
		t.Errorf("runahead-D (%.2f) should not lose badly to ESP-D (%.2f)", raD, espD)
	}
	if !(ideal < espD) {
		t.Errorf("ideal ESP-D (%.2f) must beat real ESP-D (%.2f)", ideal, espD)
	}
}

func TestShapeFig12Branch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig12())
	base := f.Summary["NL+S"]
	noextra := f.Summary["BP-noextra"]
	sepctx := f.Summary["BP-sepctx"]
	espBP := f.Summary["BP-esp"]
	// Paper: naive sharing does not help (it hurts slightly); the
	// separate context helps; the full design (context + B-list) wins.
	if noextra < base {
		t.Errorf("naive predictor sharing (%.2f) should not beat the baseline (%.2f)", noextra, base)
	}
	if !(sepctx < noextra) {
		t.Errorf("separate PIR (%.2f) must beat naive sharing (%.2f)", sepctx, noextra)
	}
	if !(espBP < sepctx) {
		t.Errorf("B-list training (%.2f) must improve on the bare context (%.2f)", espBP, sepctx)
	}
	if !(espBP < base) {
		t.Errorf("full ESP (%.2f) must beat the baseline rate (%.2f)", espBP, base)
	}
}

func TestShapeFig3Potential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig3())
	all := f.Summary["perfectAll"]
	l1i := f.Summary["perfectL1I"]
	bp := f.Summary["perfectBP"]
	l1d := f.Summary["perfectL1D"]
	// Paper: perfect-everything roughly doubles performance.
	if all < 60 || all > 160 {
		t.Errorf("perfect-all improvement %.0f%%, paper says ~100%%", all)
	}
	// Each individual factor is meaningful but far from the combination.
	for name, v := range map[string]float64{"L1I": l1i, "BP": bp, "L1D": l1d} {
		if v <= 0 {
			t.Errorf("perfect %s shows no potential (%.1f)", name, v)
		}
		if v >= all {
			t.Errorf("perfect %s (%.1f) exceeds perfect-all (%.1f)", name, v, all)
		}
	}
	// The front end dominates the back end (the paper's motivation).
	if l1i < bp/2 {
		t.Errorf("I-cache potential (%.1f) implausibly small vs BP (%.1f)", l1i, bp)
	}
}

func TestShapeFig13WorkingSets(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented sweep")
	}
	f := mustFig(t)(shapeHarness().Fig13())
	esp1 := f.Series["ESP1"]
	esp2 := f.Series["ESP2"]
	if len(esp1) < 2 || len(esp2) < 2 {
		t.Fatal("missing mode series")
	}
	// Paper's provisioning: ESP-1's 95%-reuse working set fits 5.5 KB
	// (88 lines); ESP-2's fits 0.5 KB (8 lines), within a small factor.
	if esp1[1] > 110 {
		t.Errorf("ESP-1 95%%-reuse working set %v lines; paper provisions 88", esp1[1])
	}
	if esp2[1] > 30 {
		t.Errorf("ESP-2 95%%-reuse working set %v lines; paper provisions 8", esp2[1])
	}
	if !(esp2[1] < esp1[1]) {
		t.Error("ESP-2 working set must be smaller than ESP-1's")
	}
	// Deep modes see almost nothing (the reason the paper stops at 2).
	if deep, ok := f.Series["ESP6"]; ok && len(deep) >= 2 && deep[1] > esp2[1] {
		t.Errorf("ESP-6 working set (%v) larger than ESP-2's (%v)", deep[1], esp2[1])
	}
}

func TestShapeFig14Energy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().Fig14())
	rel := f.Summary["relative-energy"]
	extra := f.Summary["extra-inst%"]
	if rel <= 1.0 || rel > 1.25 {
		t.Errorf("relative energy %.3f; paper: ~1.08", rel)
	}
	if extra < 5 || extra > 40 {
		t.Errorf("extra instructions %.1f%%; paper: 21.2%%", extra)
	}
}

func TestShapeHeadlineTable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	tbl, err := shapeHarness().Headline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("headline table has %d rows", len(tbl.Rows))
	}
}

func TestShapeRelatedWork(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	f := mustFig(t)(shapeHarness().FigRelated())
	// The paper's §7 claim: ESP outperforms both event-aware
	// instruction prefetchers with a fraction of their hardware.
	if !(f.Summary["ESP"] > f.Summary["EFetch"]) {
		t.Errorf("ESP (%.1f) must beat EFetch (%.1f)", f.Summary["ESP"], f.Summary["EFetch"])
	}
	if !(f.Summary["ESP"] > f.Summary["PIF"]) {
		t.Errorf("ESP (%.1f) must beat PIF (%.1f)", f.Summary["ESP"], f.Summary["PIF"])
	}
	if f.Summary["EFetch"] <= 0 || f.Summary["PIF"] <= 0 {
		t.Errorf("comparison prefetchers show no benefit at all: EFetch %.1f, PIF %.1f",
			f.Summary["EFetch"], f.Summary["PIF"])
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config sweep")
	}
	h := NewHarness()
	p := fastProfile()
	abls, err := h.AllAblations(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range abls {
		if len(a.Rows) < 3 {
			t.Fatalf("ablation %q has %d rows", a.Parameter, len(a.Rows))
		}
		for _, r := range a.Rows {
			if r.ImprovementPct < -20 || r.ImprovementPct > 60 {
				t.Errorf("ablation %q setting %q implausible: %.1f%%",
					a.Parameter, r.Setting, r.ImprovementPct)
			}
		}
	}
	// Depth 2 must beat depth 1 (the paper's core provisioning claim).
	d, err := h.AblateJumpDepth(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows[1].ImprovementPct <= d.Rows[0].ImprovementPct {
		t.Errorf("jump depth 2 (%.1f) should beat depth 1 (%.1f)",
			d.Rows[1].ImprovementPct, d.Rows[0].ImprovementPct)
	}
}

func TestHarnessMemoization(t *testing.T) {
	h := NewHarness()
	h.MaxEvents = 10
	p := fastProfile()
	a, err := h.Run(p, NLConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(p, NLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized results differ")
	}
}

func TestImprovementHelperAgreesWithSpeedup(t *testing.T) {
	if got := stats.Improvement(2.0); got != 100 {
		t.Fatalf("Improvement(2.0) = %v", got)
	}
}

func TestShapeSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	h := NewHarness()
	p := fastProfile()
	tbl, err := h.SeedStudy(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The min row must still show a clear improvement: the result is a
	// property of the workload statistics, not of one seed.
	var min float64
	_, err = fmt.Sscanf(tbl.Rows[0][1], "%f", &min)
	if err != nil {
		t.Fatalf("parsing seed table: %v", err)
	}
	if min < 2 {
		t.Fatalf("worst-seed improvement %.1f%%: not robust", min)
	}
}
