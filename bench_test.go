package esp

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md §4).
// Each benchmark regenerates its figure from scratch and reports the
// figure's headline quantities as custom metrics; -v additionally logs
// the full table, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. Absolute numbers differ
// from the paper (synthetic workloads on a penalty-based timing model);
// the shapes — who wins, by roughly what factor — are the deliverable,
// and EXPERIMENTS.md records both sides.

import (
	"testing"

	"espsim/internal/workload"
)

// benchFigure runs a figure generator b.N times, logging the table once.
func benchFigure(b *testing.B, gen func(h *Harness) (Figure, error), metrics func(f Figure, b *testing.B)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewHarness()
		f, err := gen(h)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", f.Table, f.PaperNote)
			if metrics != nil {
				metrics(f, b)
			}
		}
	}
}

func BenchmarkFig03PerfectPotential(b *testing.B) {
	benchFigure(b, (*Harness).Fig3, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["perfectAll"], "perfectAll-%")
		b.ReportMetric(f.Summary["perfectL1I"], "perfectL1I-%")
	})
}

func BenchmarkFig06Benchmarks(b *testing.B) {
	benchFigure(b, (*Harness).Fig6, nil)
}

func BenchmarkFig08HardwareBudget(b *testing.B) {
	benchFigure(b, (*Harness).Fig8, nil)
}

func BenchmarkFig09MainResult(b *testing.B) {
	benchFigure(b, (*Harness).Fig9, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["ESP+NL"], "ESP+NL-%")
		b.ReportMetric(f.Summary["Runahead+NL"], "Runahead+NL-%")
		b.ReportMetric(f.Summary["NL"], "NL-%")
	})
}

func BenchmarkFig10Sources(b *testing.B) {
	benchFigure(b, (*Harness).Fig10, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["ESP-I+NL"], "ESP-I+NL-%")
		b.ReportMetric(f.Summary["ESP-I,B,D+NL"], "ESP-I,B,D+NL-%")
	})
}

func BenchmarkFig11aICache(b *testing.B) {
	benchFigure(b, (*Harness).Fig11a, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["base"], "base-MPKI")
		b.ReportMetric(f.Summary["ESP-I+NL-I"], "ESP-MPKI")
	})
}

func BenchmarkFig11bDCache(b *testing.B) {
	benchFigure(b, (*Harness).Fig11b, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["base"], "base-Dmiss-%")
		b.ReportMetric(f.Summary["ESP-D+NL-D"], "ESP-Dmiss-%")
	})
}

func BenchmarkFig12Branch(b *testing.B) {
	benchFigure(b, (*Harness).Fig12, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["NL+S"], "base-mispredict-%")
		b.ReportMetric(f.Summary["BP-esp"], "ESP-mispredict-%")
	})
}

func BenchmarkFig13WorkingSet(b *testing.B) {
	benchFigure(b, (*Harness).Fig13, func(f Figure, b *testing.B) {
		if s, ok := f.Series["ESP1"]; ok && len(s) >= 2 {
			b.ReportMetric(s[1], "ESP1-95%-lines")
		}
		if s, ok := f.Series["ESP2"]; ok && len(s) >= 2 {
			b.ReportMetric(s[1], "ESP2-95%-lines")
		}
	})
}

func BenchmarkFig14Energy(b *testing.B) {
	benchFigure(b, (*Harness).Fig14, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["relative-energy"], "rel-energy")
		b.ReportMetric(f.Summary["extra-inst%"], "extra-inst-%")
	})
}

func BenchmarkFigRelatedWork(b *testing.B) {
	benchFigure(b, (*Harness).FigRelated, func(f Figure, b *testing.B) {
		b.ReportMetric(f.Summary["ESP"], "ESP-%")
		b.ReportMetric(f.Summary["EFetch"], "EFetch-%")
		b.ReportMetric(f.Summary["PIF"], "PIF-%")
	})
}

func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewHarness()
		abls, err := h.AllAblations(workload.Amazon())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, a := range abls {
				b.Logf("\n%s", a.Table)
			}
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewHarness()
		t, err := h.Headline()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// Raw simulator throughput: simulated instructions per wall-clock second.

func benchSimulate(b *testing.B, cfg Config) {
	prof := workload.Amazon()
	prof.Events = 120
	b.ReportAllocs()
	var insts int64
	for i := 0; i < b.N; i++ {
		r, err := Run(prof, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts = r.Insts
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

func BenchmarkSimulateBaseline(b *testing.B) { benchSimulate(b, BaselineConfig()) }

func BenchmarkSimulateNLS(b *testing.B) { benchSimulate(b, NLSConfig()) }

func BenchmarkSimulateRunahead(b *testing.B) { benchSimulate(b, RunaheadNLConfig()) }

func BenchmarkSimulateESP(b *testing.B) { benchSimulate(b, ESPNLConfig()) }

// The two-plane engine's reason for existing: sweepConfigs×one profile,
// either materializing the workload once and resetting pooled machines
// (Reuse — the Runner's hot loop), or rebuilding the session and machine
// for every cell (Rebuild — what Run does). allocs/op of Reuse must stay
// flat as the cell count grows; the espperf command records the ratio.

func sweepConfigs() []Config {
	return []Config{
		BaselineConfig(), NLConfig(), NLSConfig(),
		RunaheadNLConfig(), ESPNLConfig(), ESPIBDNLConfig(),
	}
}

func BenchmarkSweepReuse(b *testing.B) {
	prof := workload.Amazon()
	prof.Events = 120
	cfgs := sweepConfigs()
	w, err := NewWorkload(prof, 0)
	if err != nil {
		b.Fatal(err)
	}
	machines := make([]*Machine, len(cfgs))
	for i, cfg := range cfgs {
		if machines[i], err = NewMachine(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range machines {
			if r := m.Run(w); r.Cycles == 0 {
				b.Fatal("empty result")
			}
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkSweepRebuild(b *testing.B) {
	prof := workload.Amazon()
	prof.Events = 120
	cfgs := sweepConfigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := Run(prof, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}
