package esp

import (
	"fmt"

	"espsim/internal/stats"
	"espsim/internal/workload"
)

// Ablation sweeps one ESP design parameter at a time on one application,
// quantifying the design choices DESIGN.md calls out: the prefetch
// lookahead (§3.6's 190 instructions), the pre-event window (§3.6's ~70
// looper instructions), the jump-ahead depth (§3.1's choice of two), the
// list capacities (Figure 8's byte budgets), and the minimum stall
// window worth entering.
type Ablation struct {
	Parameter string
	Rows      []AblationRow
	Table     *stats.Table
}

// AblationRow is one setting of the swept parameter.
type AblationRow struct {
	Setting string
	// ImprovementPct is speedup over the NL+S baseline.
	ImprovementPct float64
}

// ablate evaluates variants of ESPNLConfig against the NL+S baseline.
// Any failing run (base or variant) aborts the sweep: a sweep with a
// hole in it would mis-rank the parameter settings.
func (h *Harness) ablate(prof workload.Profile, parameter string, settings []string,
	mod func(cfg *Config, i int)) (Ablation, error) {
	a := Ablation{Parameter: parameter}
	base, err := h.Run(prof, NLSConfig())
	if err != nil {
		return a, fmt.Errorf("esp: ablation %q: baseline: %w", parameter, err)
	}
	t := stats.NewTable(fmt.Sprintf("Ablation: %s (%s)", parameter, prof.Name),
		parameter, "improvement % over NL+S")
	for i, s := range settings {
		cfg := ESPNLConfig()
		cfg.Name = fmt.Sprintf("abl-%s-%d", parameter, i)
		mod(&cfg, i)
		r, err := h.Run(prof, cfg)
		if err != nil {
			return a, fmt.Errorf("esp: ablation %q: setting %q: %w", parameter, s, err)
		}
		row := AblationRow{Setting: s, ImprovementPct: stats.Improvement(r.Speedup(base))}
		a.Rows = append(a.Rows, row)
		t.Add(s, fmt.Sprintf("%.1f", row.ImprovementPct))
	}
	a.Table = t
	return a, nil
}

// AblatePrefetchLead sweeps the list-prefetch lookahead around the
// paper's 190 instructions.
func (h *Harness) AblatePrefetchLead(prof workload.Profile) (Ablation, error) {
	leads := []int{30, 100, 190, 400, 1200}
	return h.ablate(prof, "prefetch lead (insts)",
		[]string{"30", "100", "190 (paper)", "400", "1200"},
		func(cfg *Config, i int) { cfg.ESP.PrefetchLead = leads[i] })
}

// AblatePreEventWindow sweeps the looper-overhead head start around the
// paper's ~70 instructions.
func (h *Harness) AblatePreEventWindow(prof workload.Profile) (Ablation, error) {
	windows := []int{0, 35, 70, 140}
	return h.ablate(prof, "pre-event window (insts)",
		[]string{"0", "35", "70 (paper)", "140"},
		func(cfg *Config, i int) { cfg.ESP.PreEventWindow = windows[i] })
}

// AblateJumpDepth sweeps the number of events ESP may jump ahead.
func (h *Harness) AblateJumpDepth(prof workload.Profile) (Ablation, error) {
	depths := []int{1, 2, 3, 4}
	return h.ablate(prof, "jump-ahead depth",
		[]string{"1", "2 (paper)", "3", "4"},
		func(cfg *Config, i int) {
			cfg.ESP.JumpDepth = depths[i]
			cfg.MaxPending = depths[i]
		})
}

// AblateListBudget scales every prediction-list byte budget relative to
// Figure 8.
func (h *Harness) AblateListBudget(prof workload.Profile) (Ablation, error) {
	factors := []float64{0.25, 0.5, 1, 2, 4}
	return h.ablate(prof, "list budget (x Figure 8)",
		[]string{"0.25x", "0.5x", "1x (paper)", "2x", "4x"},
		func(cfg *Config, i int) {
			f := factors[i]
			sz := &cfg.ESP.Sizes
			for m := 0; m < 2; m++ {
				sz.IListBytes[m] = scaleBytes(sz.IListBytes[m], f)
				sz.DListBytes[m] = scaleBytes(sz.DListBytes[m], f)
				sz.BListDirBytes[m] = scaleBytes(sz.BListDirBytes[m], f)
				sz.BListTgtBytes[m] = scaleBytes(sz.BListTgtBytes[m], f)
			}
		})
}

// AblateMinWindow sweeps the smallest stall window worth jumping into.
func (h *Harness) AblateMinWindow(prof workload.Profile) (Ablation, error) {
	windows := []int{0, 28, 60, 100}
	return h.ablate(prof, "minimum stall window (cycles)",
		[]string{"0", "28 (default)", "60", "100"},
		func(cfg *Config, i int) { cfg.ESP.MinWindow = windows[i] })
}

// AblateDirtyHazard sweeps the dirty-eviction poisoning period (§4.4).
func (h *Harness) AblateDirtyHazard(prof workload.Profile) (Ablation, error) {
	periods := []int{0, 1, 4, 16}
	return h.ablate(prof, "dirty-hazard period",
		[]string{"off", "every eviction", "every 4th (default)", "every 16th"},
		func(cfg *Config, i int) { cfg.ESP.DirtyHazardPeriod = periods[i] })
}

func scaleBytes(b int, f float64) int {
	n := int(float64(b) * f)
	if n < 1 {
		n = 1
	}
	return n
}

// AllAblations runs every sweep on one application, stopping at the
// first sweep that cannot complete.
func (h *Harness) AllAblations(prof workload.Profile) ([]Ablation, error) {
	sweeps := []func(workload.Profile) (Ablation, error){
		h.AblatePrefetchLead,
		h.AblatePreEventWindow,
		h.AblateJumpDepth,
		h.AblateListBudget,
		h.AblateMinWindow,
		h.AblateDirtyHazard,
	}
	var out []Ablation
	for _, sweep := range sweeps {
		a, err := sweep(prof)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}
