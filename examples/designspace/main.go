// Designspace explores ESP's hardware design space: how deep jumping
// ahead pays off (the paper settles on two modes, §6.6 / Figure 13) and
// what the cachelets' capacity must be to capture pre-execution reuse.
//
// It is also the materialize-once idiom in action: the amazon session is
// built into one immutable esp.Workload up front, and every design point
// replays it on a fresh machine — the instruction streams are never
// regenerated, and each sweep's wall-clock is the simulation alone.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/core"
	"espsim/internal/stats"
	"espsim/internal/workload"
)

// replay assembles a machine for cfg and replays the shared workload, or
// exits with a one-line error. An illegal cachelet geometry in the
// sizing sweep below would surface here as a validation error, not a
// panic.
func replay(w *esp.Workload, cfg esp.Config) esp.Result {
	m, err := esp.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
	return m.Run(w)
}

func main() {
	// One materialization serves every design point in both sweeps.
	w, err := esp.NewWorkload(workload.Amazon(), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
	base := replay(w, esp.NLSConfig())

	// Jump-ahead depth sweep: performance and mode usage.
	t := stats.NewTable("Jump-ahead depth (amazon)",
		"depth", "speedup % over NL+S", "mode entries")
	for depth := 1; depth <= 4; depth++ {
		cfg := esp.ESPNLConfig()
		cfg.Name = fmt.Sprintf("ESP-depth%d", depth)
		cfg.ESP.JumpDepth = depth
		cfg.MaxPending = depth
		r := replay(w, cfg)
		entries := ""
		for m := 0; m < depth; m++ {
			if m > 0 {
				entries += " / "
			}
			entries += fmt.Sprintf("%d", r.ESPStats.ModeEntries[m])
		}
		t.Add(fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.1f", (r.Speedup(base)-1)*100), entries)
	}
	fmt.Println(t)
	fmt.Println("The paper provisions two modes: deeper modes see little use (§6.6).")
	fmt.Println()

	// Cachelet sizing sweep (the Figure 13 question).
	t2 := stats.NewTable("I/D-cachelet capacity (amazon)",
		"ESP-1 cachelet", "speedup % over NL+S", "cachelet fills")
	// 11-way cachelets with power-of-two set counts; 5632 B is the
	// paper's 5.5 KB design point.
	for _, bytes := range []int{704, 1408, 2816, 5632, 11264, 22528} {
		cfg := esp.ESPNLConfig()
		cfg.Name = fmt.Sprintf("ESP-cl%d", bytes)
		cfg.ESP.Sizes.ICacheletBytes[0] = bytes
		cfg.ESP.Sizes.ICacheletWays[0] = 11
		cfg.ESP.Sizes.DCacheletBytes[0] = bytes
		cfg.ESP.Sizes.DCacheletWays[0] = 11
		r := replay(w, cfg)
		t2.Add(fmt.Sprintf("%.1f KB", float64(bytes)/1024),
			fmt.Sprintf("%.1f", (r.Speedup(base)-1)*100),
			fmt.Sprintf("%d", r.ESPStats.CacheletFills))
	}
	fmt.Println(t2)

	// The Figure 8 hardware budget for the shipped configuration.
	rows := core.HardwareBudget(core.DefaultSizes())
	t3 := stats.NewTable("Hardware budget (Figure 8)", "structure", "ESP-1", "ESP-2")
	for _, row := range rows {
		t3.Add(row.Structure, fmt.Sprintf("%d B", row.ESP1Bytes), fmt.Sprintf("%d B", row.ESP2Bytes))
	}
	t3.Add("total",
		fmt.Sprintf("%.1f KB", float64(core.BudgetTotal(rows, 0))/1024),
		fmt.Sprintf("%.1f KB", float64(core.BudgetTotal(rows, 1))/1024))
	fmt.Println(t3)
}
