// Customworkload shows how to build a synthetic asynchronous workload
// from scratch with the workload API and study ESP's sensitivity to the
// two properties it depends on: how long events sit in the queue before
// executing, and how often events depend on one another (which makes
// pre-execution diverge).
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/stats"
	"espsim/internal/workload"
)

// run simulates or exits with a one-line error — a malformed custom
// Profile (or Config) surfaces as a validation error, never a panic.
func run(prof workload.Profile, cfg esp.Config) esp.Result {
	r, err := esp.Run(prof, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "customworkload:", err)
		os.Exit(1)
	}
	return r
}

// iotSensor models an Internet-of-Things sensor hub: a small firmware
// (tight code), short periodic events, and heavy shared state — one of
// the other asynchronous domains the paper calls out (§1).
func iotSensor() workload.Profile {
	return workload.Profile{
		Name:             "iot-sensor",
		Events:           300,
		MeanEventLen:     3000,
		EventLenSpread:   0.4,
		Handlers:         12,
		HandlerFootprint: 32 << 10,
		RuntimeFootprint: 128 << 10,
		RuntimeFrac:      0.3,
		LoadFrac:         0.24,
		StoreFrac:        0.12,
		SharedData:       2 << 20,
		EventHeap:        2 << 10,
		SharedFrac:       0.5,
		StrideFrac:       0.01,
		HotFrac:          0.8,
		ReuseFrac:        0.96,
		HotCallFrac:      0.7,
		CodeIntensity:    1.0,
		DataDepBranch:    0.05,
		DepProb:          0.02,
		QueueNext:        0.95,
		QueueSecond:      0.85,
		Seed:             0x107,
	}
}

func main() {
	fmt.Println("ESP on a custom IoT-style asynchronous workload")
	fmt.Println()

	// Sensitivity to queue occupancy: ESP can only pre-execute events
	// that are already enqueued.
	t := stats.NewTable("Queue-occupancy sensitivity",
		"P(next visible)", "P(second visible)", "ESP+NL speedup %")
	for _, q := range []struct{ next, second float64 }{
		{0.10, 0.02}, {0.50, 0.25}, {0.95, 0.85},
	} {
		p := iotSensor()
		p.QueueNext, p.QueueSecond = q.next, q.second
		base := run(p, esp.NLSConfig())
		accel := run(p, esp.ESPNLConfig())
		t.Add(fmt.Sprintf("%.2f", q.next), fmt.Sprintf("%.2f", q.second),
			fmt.Sprintf("%.1f", (accel.Speedup(base)-1)*100))
	}
	fmt.Println(t)

	// Sensitivity to inter-event dependence: a dependent event's
	// pre-execution diverges and its gathered hints stop matching.
	t2 := stats.NewTable("Event-dependence sensitivity",
		"P(event depends on predecessor)", "ESP+NL speedup %", "JIT corrections")
	for _, dep := range []float64{0.0, 0.05, 0.25, 0.75} {
		p := iotSensor()
		p.DepProb = dep
		base := run(p, esp.NLSConfig())
		accel := run(p, esp.ESPNLConfig())
		t2.Add(fmt.Sprintf("%.2f", dep),
			fmt.Sprintf("%.1f", (accel.Speedup(base)-1)*100),
			fmt.Sprintf("%d", accel.ESPStats.Corrections))
	}
	fmt.Println(t2)
	fmt.Println("The paper relies on both properties: events wait tens of microseconds")
	fmt.Println("in the queue (§2.2) and >99% of pre-executions match the eventual")
	fmt.Println("normal execution (§5).")
}
