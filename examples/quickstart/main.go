// Quickstart: simulate one asynchronous web application on the baseline
// machine and on ESP, and print the headline comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/workload"
)

// run simulates or exits with a one-line error: example programs treat
// any simulation failure as fatal.
func run(prof workload.Profile, cfg esp.Config) esp.Result {
	r, err := esp.Run(prof, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	return r
}

func main() {
	// Pick a workload: the seven paper applications are built in
	// (amazon, bing, cnn, facebook, gmaps, gdocs, pixlr).
	app := workload.Amazon()

	// Simulate the paper's baseline: next-line + stride prefetching.
	base := run(app, esp.NLSConfig())

	// Simulate the same session on an ESP core.
	accel := run(app, esp.ESPNLConfig())

	fmt.Printf("workload: %s (%d events, %d instructions)\n\n",
		base.App, app.Events, base.Insts)
	fmt.Printf("%-22s %14s %14s\n", "", "NL+S baseline", "ESP+NL")
	fmt.Printf("%-22s %14d %14d\n", "cycles", base.Cycles, accel.Cycles)
	fmt.Printf("%-22s %14.3f %14.3f\n", "IPC", base.IPC, accel.IPC)
	fmt.Printf("%-22s %14.2f %14.2f\n", "L1-I MPKI", base.IMPKI, accel.IMPKI)
	fmt.Printf("%-22s %13.2f%% %13.2f%%\n", "L1-D miss rate", base.DMissRate*100, accel.DMissRate*100)
	fmt.Printf("%-22s %13.2f%% %13.2f%%\n", "branch mispredicts", base.MispredictRate*100, accel.MispredictRate*100)
	fmt.Printf("\nESP speedup: %.1f%%  (pre-executed %.1f%% extra instructions)\n",
		(accel.Speedup(base)-1)*100, accel.ExtraInstPct)

	s := accel.ESPStats
	fmt.Printf("\nsneak peek activity: %d events pre-executed, %d consumed\n",
		s.EventsPreExecuted, s.EventsConsumed)
	fmt.Printf("  prefetches issued: %d instruction, %d data\n", s.PrefetchI, s.PrefetchD)
	fmt.Printf("  branch mispredictions corrected just-in-time: %d\n", s.Corrections)
}
