// Webapps sweeps the paper's seven Web 2.0 workloads across the main
// machine configurations (the Figure 9 comparison): no prefetching,
// next-line, next-line + stride, runahead execution, and ESP.
//
//	go run ./examples/webapps
package main

import (
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/stats"
	"espsim/internal/workload"
)

// run simulates or exits with a one-line error.
func run(prof workload.Profile, cfg esp.Config) esp.Result {
	r, err := esp.Run(prof, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webapps:", err)
		os.Exit(1)
	}
	return r
}

func main() {
	configs := []esp.Config{
		esp.NLConfig(),
		esp.NLSConfig(),
		esp.RunaheadNLConfig(),
		esp.ESPNLConfig(),
	}

	t := stats.NewTable(
		"Performance improvement (%) over the no-prefetch baseline",
		append([]string{"app"}, configNames(configs)...)...)

	var speedups = make(map[string][]float64)
	for _, prof := range workload.Suite() {
		base := run(prof, esp.BaselineConfig())
		row := []string{prof.Name}
		for _, cfg := range configs {
			r := run(prof, cfg)
			sp := r.Speedup(base)
			speedups[cfg.Name] = append(speedups[cfg.Name], sp)
			row = append(row, fmt.Sprintf("%.1f", stats.Improvement(sp)))
		}
		t.Add(row...)
	}
	hmean := []string{"HMean"}
	for _, cfg := range configs {
		hmean = append(hmean, fmt.Sprintf("%.1f", stats.Improvement(stats.HarmonicMean(speedups[cfg.Name]))))
	}
	t.Add(hmean...)
	fmt.Println(t)
	fmt.Println("Paper (Figure 9 HMeans): NL 13.8, NL+S ~13.9, Runahead+NL 21, ESP+NL 32.")
}

func configNames(cfgs []esp.Config) []string {
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	return names
}
