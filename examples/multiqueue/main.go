// Multiqueue demonstrates the paper's §4.5 generalization: a runtime
// arbitrating several software event queues onto one looper thread, with
// the hardware event queue fed by the runtime's *predictions* of the
// next two events. When a prediction is wrong (a synchronous barrier
// held a queue back), ESP's "incorrect prediction" bit discards the
// pre-executed records; this example sweeps the misprediction rate to
// show how gracefully ESP degrades.
//
//	go run ./examples/multiqueue
package main

import (
	"fmt"
	"os"

	esp "espsim"
	"espsim/internal/eventq"
	"espsim/internal/stats"
	"espsim/internal/workload"
)

// fatal prints a one-line error and exits non-zero, matching the other
// examples' error handling.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multiqueue:", err)
	os.Exit(1)
}

func main() {
	// Two applications' queues share one looper: a maps view and a feed.
	mk := func() []*workload.Session {
		a := workload.GMaps()
		a.Events = 40
		b := workload.Facebook()
		b.Events = 40
		sa, err := workload.NewSession(a)
		if err != nil {
			fatal(err)
		}
		sb, err := workload.NewSession(b)
		if err != nil {
			fatal(err)
		}
		return []*workload.Session{sa, sb}
	}

	t := stats.NewTable("ESP across two event queues (gmaps + facebook handlers)",
		"runtime mispredict rate", "ESP+NL speedup %", "slot mismatches", "events consumed")
	for _, miss := range []float64{0.0, 0.1, 0.3, 0.6, 1.0} {
		src, err := eventq.NewMultiQueueSource(mk(), 0xBEEF, miss)
		if err != nil {
			fatal(err)
		}
		base, err := esp.RunSource("multiqueue", src, esp.NLSConfig())
		if err != nil {
			fatal(err)
		}
		accel, err := esp.RunSource("multiqueue", src, esp.ESPNLConfig())
		if err != nil {
			fatal(err)
		}
		t.Add(fmt.Sprintf("%.0f%%", miss*100),
			fmt.Sprintf("%.1f", (accel.Speedup(base)-1)*100),
			fmt.Sprintf("%d", accel.ESPStats.SlotMismatches),
			fmt.Sprintf("%d", accel.ESPStats.EventsConsumed))
	}
	fmt.Println(t)
	fmt.Println("Paper §4.5: the runtime predicts the next two events per looper; an")
	fmt.Println("\"incorrect prediction\" bit keeps wrong-order pre-executions from being used.")
}
